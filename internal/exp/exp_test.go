package exp

import (
	"strconv"
	"strings"
	"testing"

	"cuckoodir/internal/stats"
)

// tableType aliases the stats table type for test readability.
type tableType = stats.Table

func TestRegistry(t *testing.T) {
	all := All()
	want := []string{
		"table1", "table2", "fig4", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "mix", "hashes", "ablation", "formats",
		"analytic", "latency", "replay", "resize", "degrade", "saturate",
	}
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Expect == "" || e.Run == nil {
			t.Errorf("%s: incomplete experiment definition", e.ID)
		}
	}
	if _, err := ByID("fig7"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("ByID of unknown id succeeded")
	}
	if len(IDs()) != len(want) {
		t.Error("IDs() incomplete")
	}
}

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("scale names wrong")
	}
}

func TestTable1(t *testing.T) {
	ts := runExp(t, "table1")
	body := ts[0].String()
	for _, want := range []string{"16 cores", "512 sets x 2 ways", "1024 sets x 16 ways", "2048", "16384"} {
		if !strings.Contains(body, want) {
			t.Errorf("table1 missing %q:\n%s", want, body)
		}
	}
}

func TestTable2(t *testing.T) {
	ts := runExp(t, "table2")
	body := ts[0].String()
	for _, wl := range []string{"db2", "oracle", "qry2", "qry16", "qry17", "apache", "zeus", "em3d", "ocean"} {
		if !strings.Contains(body, wl) {
			t.Errorf("table2 missing workload %q", wl)
		}
	}
}

func runExp(t *testing.T, id string) []*tableType {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	ts := e.Run(Options{Scale: Quick})
	if len(ts) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	for _, tb := range ts {
		if tb.NumRows() == 0 {
			t.Fatalf("%s produced an empty table %q", id, tb.Title)
		}
	}
	return ts
}

func TestFig4Shapes(t *testing.T) {
	ts := runExp(t, "fig4")
	if len(ts) != 2 {
		t.Fatalf("fig4 tables = %d", len(ts))
	}
	// Energy table: Duplicate-Tag column must grow by >10x from first to
	// last row.
	energyTbl := ts[1]
	first := parsePct(t, energyTbl.Cell(0, 1))
	last := parsePct(t, energyTbl.Cell(energyTbl.NumRows()-1, 1))
	if last < first*10 {
		t.Errorf("fig4: Duplicate-Tag energy grew only %.1fx", last/first)
	}
}

func TestFig7Shapes(t *testing.T) {
	ts := runExp(t, "fig7")
	att, fail := ts[0], ts[1]
	// At the 0.50 occupancy row (index 9), 3/4/8-ary attempts <= 2 and
	// failure probability zero.
	for col := 2; col <= 4; col++ {
		a := parseFloat(t, att.Cell(9, col))
		if a > 2.0 {
			t.Errorf("fig7: %s attempts at 50%% = %.2f, want <= 2", att.Headers()[col], a)
		}
		f := fail.Cell(9, col)
		if f != "0" {
			t.Errorf("fig7: %s failure at 50%% = %s, want 0", fail.Headers()[col], f)
		}
	}
}

func TestFig13IncludesCuckoo(t *testing.T) {
	ts := runExp(t, "fig13")
	if len(ts) != 4 {
		t.Fatalf("fig13 tables = %d", len(ts))
	}
	hdr := strings.Join(ts[0].Headers(), " ")
	if !strings.Contains(hdr, "Cuckoo Coarse") || !strings.Contains(hdr, "Cuckoo Hierarchical") {
		t.Errorf("fig13 headers missing Cuckoo variants: %s", hdr)
	}
	// Private-L2 tables must mark In-Cache n/a.
	if !strings.Contains(ts[2].String(), "n/a") {
		t.Error("fig13 Private-L2 should mark In-Cache n/a")
	}
}

func TestAblation(t *testing.T) {
	ts := runExp(t, "ablation")
	if len(ts) != 2 {
		t.Fatalf("ablation tables = %d", len(ts))
	}
	if ts[0].NumRows() != 5 {
		t.Fatalf("ablation rows = %d", ts[0].NumRows())
	}
	// Displacement-budget ordering: skewed >= elbow >= cuckoo per row.
	el := ts[1]
	for r := 0; r < el.NumRows(); r++ {
		sk := parseFloat(t, el.Cell(r, 1))
		eb := parseFloat(t, el.Cell(r, 2))
		ck := parseFloat(t, el.Cell(r, 3))
		if !(sk >= eb && eb >= ck) {
			t.Errorf("row %d: ordering violated: skewed=%v elbow=%v cuckoo=%v", r, sk, eb, ck)
		}
	}
}

func TestAnalytic(t *testing.T) {
	ts := runExp(t, "analytic")
	if len(ts) != 2 {
		t.Fatalf("analytic tables = %d", len(ts))
	}
	sparse, ck := ts[0], ts[1]
	// Model and measurement agree within a few percentage points at every
	// sparse occupancy row.
	for r := 0; r < sparse.NumRows(); r++ {
		m := parsePct(t, normPct(sparse.Cell(r, 1)))
		meas := parsePct(t, normPct(sparse.Cell(r, 2)))
		if diff := m - meas; diff < -5 || diff > 5 {
			t.Errorf("sparse row %d: model %.2f%% vs measured %.2f%%", r, m, meas)
		}
	}
	if ck.NumRows() != 4 {
		t.Fatalf("cuckoo rows = %d", ck.NumRows())
	}
}

func TestLatencyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	ts := runExp(t, "latency")
	// Wait fraction column must be tiny for the cuckoo row.
	body := ts[0].String()
	if !strings.Contains(body, "cuckoo") {
		t.Fatalf("latency table missing cuckoo row:\n%s", body)
	}
}

// TestReplayQuick: the replay-throughput sweep produces one row per
// configuration with live throughput in every row, covers both
// submission paths and both home functions, and honors the Orgs
// override (sharded names are skipped with a note, not double-wrapped).
func TestReplayQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput experiment")
	}
	ts := runExp(t, "replay")
	tb := ts[0]
	if tb.NumRows() != 7 {
		t.Fatalf("replay rows = %d, want 7", tb.NumRows())
	}
	paths, homes := map[string]bool{}, map[string]bool{}
	for r := 0; r < tb.NumRows(); r++ {
		paths[tb.Cell(r, 3)] = true
		homes[tb.Cell(r, 2)] = true
		if v := parseFloat(t, tb.Cell(r, 6)); v <= 0 {
			t.Errorf("row %d: throughput %v kacc/s", r, v)
		}
	}
	if !paths["applyshard"] || !paths["engine"] {
		t.Errorf("paths covered: %v, want both applyshard and engine", paths)
	}
	if !homes["mix"] || !homes["interleave"] {
		t.Errorf("homes covered: %v, want both mix and interleave", homes)
	}

	e, err := ByID("replay")
	if err != nil {
		t.Fatal(err)
	}
	ts = e.Run(Options{Scale: Quick, Orgs: []string{"cuckoo-4x512", "sharded-2(cuckoo-4x512)"}})
	tb = ts[0]
	if tb.NumRows() != 7 {
		t.Fatalf("override rows = %d, want 7 (one eligible org)", tb.NumRows())
	}
	for r := 0; r < tb.NumRows(); r++ {
		if tb.Cell(r, 0) != "cuckoo-4x512" {
			t.Errorf("override row %d org = %q", r, tb.Cell(r, 0))
		}
	}
}

func TestFig8Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	ts := runExp(t, "fig8")
	tb := ts[0]
	// Every row: private occupancy >= shared occupancy (sharing shrinks
	// the shared-config block count relative to capacity).
	for r := 0; r < tb.NumRows(); r++ {
		sh := parsePct(t, tb.Cell(r, 2))
		pr := parsePct(t, tb.Cell(r, 3))
		if sh <= 0 || pr <= 0 {
			t.Fatalf("fig8 row %d: empty cells", r)
		}
		if tb.Cell(r, 0) == "ocean" && pr < 85 {
			t.Errorf("fig8: ocean Private-L2 occupancy %.1f%%, want near 100%%", pr)
		}
	}
}

func TestFig9Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	ts := runExp(t, "fig9")
	if len(ts) != 2 {
		t.Fatalf("fig9 tables = %d", len(ts))
	}
	for i, tb := range ts {
		// Rows are ordered over- to under-provisioned; the last row must
		// show (weakly) more insertion attempts than the first, and the
		// under-provisioned row must force invalidations.
		first := parseFloat(t, tb.Cell(0, 2))
		last := parseFloat(t, tb.Cell(tb.NumRows()-1, 2))
		if last < first {
			t.Errorf("table %d: attempts fell from %.2f to %.2f as provisioning shrank", i, first, last)
		}
		if tb.Cell(tb.NumRows()-1, 3) == "0" {
			t.Errorf("table %d: under-provisioned row shows zero invalidations", i)
		}
		if tb.Cell(0, 3) != "0" {
			// Over-provisioned (1.5x/2x) should be clean or nearly so.
			if v := parsePct(t, tb.Cell(0, 3)); v > 0.1 {
				t.Errorf("table %d: over-provisioned invalidation rate %.3f%%", i, v)
			}
		}
	}
}

func TestFig10Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	ts := runExp(t, "fig10")
	tb := ts[0]
	for r := 0; r < tb.NumRows(); r++ {
		for _, col := range []int{2, 3} {
			v := parseFloat(t, tb.Cell(r, col))
			if v < 1 || v > 3.0 {
				t.Errorf("%s %s: avg attempts %.2f outside [1,3] (paper: typically < 2)",
					tb.Cell(r, 0), tb.Headers()[col], v)
			}
		}
	}
}

func TestFig11Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	ts := runExp(t, "fig11")
	tb := ts[0]
	if tb.NumRows() != 32 {
		t.Fatalf("rows = %d, want 32", tb.NumRows())
	}
	// Fraction at 1 attempt dominates; the cap bucket is "nearly zero"
	// with no peak (paper: "lack of a peak at 32 indicates that longer
	// insertions and loops are practically non-existent").
	for _, col := range []int{1, 2} {
		first := parsePct(t, normPct(tb.Cell(0, col)))
		if first < 50 {
			t.Errorf("col %d: only %.1f%% of inserts at 1 attempt", col, first)
		}
		cap32 := parsePct(t, normPct(tb.Cell(31, col)))
		if cap32 > 0.05 {
			t.Errorf("col %d: %.4f%% of inserts at the 32-attempt cap, want nearly zero", col, cap32)
		}
		second := parsePct(t, normPct(tb.Cell(1, col)))
		if cap32 > second && cap32 > 0 {
			t.Errorf("col %d: peak at the cap (%.4f%% > %.4f%% at 2 attempts)", col, cap32, second)
		}
	}
}

func normPct(s string) string {
	if s == "0" {
		return "0%"
	}
	return s
}

func TestFig12Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	ts := runExp(t, "fig12")
	if len(ts) != 2 {
		t.Fatalf("fig12 tables = %d", len(ts))
	}
	for _, tb := range ts {
		// Suite-average ordering: Sparse 2x > Cuckoo, and Cuckoo ~ 0.
		var sp2, ck float64
		for r := 0; r < tb.NumRows(); r++ {
			sp2 += parsePct(t, normPct(tb.Cell(r, 1)))
			ck += parsePct(t, normPct(tb.Cell(r, 4)))
		}
		if sp2 <= ck {
			t.Errorf("%s: Sparse 2x total %.3f%% not above Cuckoo %.3f%%", tb.Title, sp2, ck)
		}
		if ck > 0.5 {
			t.Errorf("%s: Cuckoo suite invalidations %.3f%% — should be near zero", tb.Title, ck)
		}
	}
}

func TestMixQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	ts := runExp(t, "mix")
	tb := ts[0]
	if tb.NumRows() != 5 {
		t.Fatalf("mix rows = %d", tb.NumRows())
	}
	// Insert and remove-tag fractions must roughly balance (every tracked
	// block enters once and leaves once) in both configurations.
	for _, col := range []int{1, 2} {
		ins := parsePct(t, tb.Cell(0, col))
		rmt := parsePct(t, tb.Cell(3, col))
		if ins < 5 || rmt < 5 {
			t.Errorf("col %d: degenerate mix ins=%.1f rmt=%.1f", col, ins, rmt)
		}
		if diff := ins - rmt; diff < -12 || diff > 12 {
			t.Errorf("col %d: insert %.1f%% vs remove-tag %.1f%% unbalanced", col, ins, rmt)
		}
	}
}

func TestHashesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	ts := runExp(t, "hashes")
	tb := ts[0]
	if tb.NumRows()%2 != 0 {
		t.Fatalf("hashes rows = %d, want skew/strong pairs", tb.NumRows())
	}
	sawAdverse := false
	for r := 0; r < tb.NumRows(); r += 2 {
		skew := parseFloat(t, tb.Cell(r, 6))
		strong := parseFloat(t, tb.Cell(r+1, 6))
		// Strong hashing must never be meaningfully worse than skewing.
		if strong > skew*1.25+0.1 {
			t.Errorf("row %d: strong attempts %.2f much worse than skew %.2f", r, strong, skew)
		}
		// On contiguous (unscattered) addresses the linear skew family
		// degrades — more attempts or nonzero forced invalidations —
		// while strong hashing stays clean: the §5.5 "strong hashes help
		// most under adverse conditions" signal.
		if tb.Cell(r, 4) == "contiguous" {
			sawAdverse = true
			skewInval := tb.Cell(r, 7)
			strongInval := tb.Cell(r+1, 7)
			attemptsWorse := skew >= strong*1.3
			invalWorse := skewInval != "0" && strongInval == "0"
			if !attemptsWorse && !invalWorse {
				t.Errorf("row %d (contiguous): skew (%.2f att, %s inval) not clearly worse than strong (%.2f att, %s inval)",
					r, skew, skewInval, strong, strongInval)
			}
		}
	}
	if !sawAdverse {
		t.Error("hashes experiment lost its contiguous-address rows")
	}
}

func TestFormatsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	ts := runExp(t, "formats")
	tb := ts[0]
	if tb.NumRows() != 4 {
		t.Fatalf("formats rows = %d", tb.NumRows())
	}
	// Full and hierarchical are exact: zero spurious invalidations.
	for _, r := range []int{0, 3} {
		if tb.Cell(r, 2) != "0" {
			t.Errorf("%s: spurious invalidations = %s, want 0", tb.Cell(r, 0), tb.Cell(r, 2))
		}
	}
	// Coarse must show the over-approximation cost.
	if tb.Cell(1, 2) == "0" {
		t.Error("coarse format showed no spurious invalidations on a sharing workload")
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad percent cell %q: %v", s, err)
	}
	return v
}

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad float cell %q: %v", s, err)
	}
	return v
}

// TestOrgsOverride: Options.Orgs replaces fig12's lineup with exactly
// the named organizations, in order, headers included.
func TestOrgsOverride(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	e, err := ByID("fig12")
	if err != nil {
		t.Fatal(err)
	}
	orgs := []string{"cuckoo-4x1024", "skew-4x1024"}
	ts := e.Run(Options{Scale: Quick, Orgs: orgs})
	if len(ts) != 2 {
		t.Fatalf("fig12 tables = %d", len(ts))
	}
	for _, tb := range ts {
		h := tb.Headers()
		if len(h) != 1+len(orgs) {
			t.Fatalf("%s: headers %v, want Workload + %v", tb.Title, h, orgs)
		}
		for i, name := range orgs {
			if h[1+i] != name {
				t.Errorf("%s: header[%d] = %q, want %q", tb.Title, 1+i, h[1+i], name)
			}
		}
	}
}

// TestOrgsOverridePanicsOnUnknown: an unresolvable name is a programming
// error at the harness level (the CLI validates first).
func TestOrgsOverridePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown org name did not panic")
		}
	}()
	orgOverrides(Options{Orgs: []string{"nonsense-1x2"}}, 16)
}

// TestOrgsOverrideFig9: the -dir override reaches the fig9 provisioning
// sweep — the lineup is exactly the named organizations, with the
// provisioning factor derived from each built slice's capacity (and
// "unbounded" for the ideal reference).
func TestOrgsOverrideFig9(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	e, err := ByID("fig9")
	if err != nil {
		t.Fatal(err)
	}
	orgs := []string{"cuckoo-4x1024", "ideal"}
	ts := e.Run(Options{Scale: Quick, Orgs: orgs})
	if len(ts) != 2 {
		t.Fatalf("fig9 tables = %d", len(ts))
	}
	for _, tb := range ts {
		if tb.NumRows() != len(orgs) {
			t.Fatalf("%s: rows = %d, want %d", tb.Title, tb.NumRows(), len(orgs))
		}
		for r, name := range orgs {
			if tb.Cell(r, 0) != name {
				t.Errorf("%s: row %d label = %q, want %q", tb.Title, r, tb.Cell(r, 0), name)
			}
		}
		if got := tb.Cell(1, 1); got != "unbounded" {
			t.Errorf("%s: ideal provisioning cell = %q, want unbounded", tb.Title, got)
		}
		if tb.Cell(1, 3) != "0" {
			t.Errorf("%s: ideal forced invalidations = %q, want 0", tb.Title, tb.Cell(1, 3))
		}
	}
}

// TestOrgsOverrideFormats: the -dir override reaches the sharer-format
// experiment — the four formats sweep over each named unsharded cuckoo
// organization; ineligible names are skipped with a note, not run.
func TestOrgsOverrideFormats(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	e, err := ByID("formats")
	if err != nil {
		t.Fatal(err)
	}
	ts := e.Run(Options{Scale: Quick, Orgs: []string{"cuckoo-4x512", "sharded-2(cuckoo-4x512)"}})
	tb := ts[0]
	if got := tb.Headers()[0]; got != "Organization" {
		t.Fatalf("override table leads with %q, want Organization", got)
	}
	if tb.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4 (one eligible org x 4 formats)", tb.NumRows())
	}
	for r := 0; r < tb.NumRows(); r++ {
		if tb.Cell(r, 0) != "cuckoo-4x512" {
			t.Errorf("row %d org = %q", r, tb.Cell(r, 0))
		}
	}
}

// TestResizeQuick: the online-resize experiment runs all three phases,
// completes the migration it starts (the footnote records 1/1), and
// reports live throughput for the non-resizing shards in every phase.
func TestResizeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput experiment")
	}
	ts := runExp(t, "resize")
	tb := ts[0]
	if tb.NumRows() != 3 {
		t.Fatalf("resize rows = %d, want 3 (before/during/after)", tb.NumRows())
	}
	for r, phase := range []string{"before", "during", "after"} {
		if tb.Cell(r, 0) != phase {
			t.Errorf("row %d phase = %q, want %q", r, tb.Cell(r, 0), phase)
		}
		if v := parseFloat(t, tb.Cell(r, 3)); v <= 0 {
			t.Errorf("%s: non-resizing shards report %v kacc/s", phase, v)
		}
	}
	if v := parseFloat(t, tb.Cell(1, 4)); v <= 0 {
		t.Error("during phase migrated no entries")
	}
	body := tb.String()
	if !strings.Contains(body, "started/completed: 1/1") {
		t.Errorf("resize table does not record a completed migration:\n%s", body)
	}
	if !strings.Contains(body, "forced evictions during migration: 0") {
		t.Errorf("resize table records lost entries:\n%s", body)
	}
}

func TestDegradeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput experiment")
	}
	ts := runExp(t, "degrade")
	tb := ts[0]
	if tb.NumRows() != 3 {
		t.Fatalf("degrade rows = %d, want 3 (healthy/stalled/recovered)", tb.NumRows())
	}
	for r, phase := range []string{"healthy", "stalled", "recovered"} {
		if tb.Cell(r, 0) != phase {
			t.Errorf("row %d phase = %q, want %q", r, tb.Cell(r, 0), phase)
		}
		if v := parseFloat(t, tb.Cell(r, 2)); v <= 0 {
			t.Errorf("%s: non-faulted shards report %v kacc/s", phase, v)
		}
	}
	if v := parseFloat(t, tb.Cell(0, 4)); v != 0 {
		t.Errorf("healthy phase rejected %v batches, want 0", v)
	}
	if v := parseFloat(t, tb.Cell(1, 4)); v <= 0 {
		t.Error("stalled phase rejected no batches — the stall did not bite")
	}
	body := tb.String()
	if !strings.Contains(body, "degraded=true drainer0.stalled=true") {
		t.Errorf("degrade table does not record the degraded health transition:\n%s", body)
	}
	if !strings.Contains(body, "after release: degraded=false") {
		t.Errorf("degrade table does not record health recovery:\n%s", body)
	}
	if strings.Contains(body, "WARNING") {
		t.Errorf("degrade table carries a health-tracking warning:\n%s", body)
	}
	if !strings.Contains(body, "erred accesses: 0, contained panics: 0") {
		t.Errorf("degrade run erred or contained a panic — a stall must not corrupt:\n%s", body)
	}
}

// TestSaturateQuick: the QoS saturation experiment sweeps the flood
// levels, sheds the background class at overload while the foreground
// is rejected zero times at every level, and its no-QoS control shows
// the classless client shedding instead — with no WARNING note, i.e.
// both shapes actually appeared on this host.
func TestSaturateQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput experiment")
	}
	ts := runExp(t, "saturate")
	if len(ts) != 2 {
		t.Fatalf("saturate tables = %d, want sweep + control", len(ts))
	}
	tb := ts[0]
	if tb.NumRows() < 3 {
		t.Fatalf("sweep rows = %d, want at least baseline + 2 flood levels", tb.NumRows())
	}
	if tb.Cell(0, 0) != "0" {
		t.Fatalf("first sweep row is %q, want the uncontended baseline", tb.Cell(0, 0))
	}
	for r := 0; r < tb.NumRows(); r++ {
		if v := parseFloat(t, tb.Cell(r, 6)); v != 0 {
			t.Errorf("level %s: foreground rejected %v batches, want 0 at every level", tb.Cell(r, 0), v)
		}
		if v := parseFloat(t, tb.Cell(r, 1)); v <= 0 {
			t.Errorf("level %s: zero throughput", tb.Cell(r, 0))
		}
	}
	last := tb.NumRows() - 1
	if v := parseFloat(t, tb.Cell(last, 7)); v <= 0 {
		t.Error("top flood level shed no background batches — the sweep did not saturate")
	}
	body := tb.String()
	if !strings.Contains(body, "background sheds first") {
		t.Errorf("sweep table does not record the shed order:\n%s", body)
	}
	if strings.Contains(body, "WARNING") {
		t.Errorf("sweep table carries a saturation warning:\n%s", body)
	}

	ctrl := ts[1]
	if ctrl.NumRows() != 2 {
		t.Fatalf("control rows = %d, want QoS + no-QoS", ctrl.NumRows())
	}
	if v := parseFloat(t, ctrl.Cell(0, 2)); v != 0 {
		t.Errorf("QoS control row: client rejected %v batches, want 0", v)
	}
	qosDone := parseFloat(t, ctrl.Cell(0, 1))
	noQoSDone := parseFloat(t, ctrl.Cell(1, 1))
	if noQoSDone >= qosDone {
		t.Errorf("classless client completed %v >= QoS client's %v — the control shows no separation benefit", noQoSDone, qosDone)
	}
	cbody := ctrl.String()
	if !strings.Contains(cbody, "class separation at work") {
		t.Errorf("control table does not record the separation verdict:\n%s", cbody)
	}
	if strings.Contains(cbody, "WARNING") {
		t.Errorf("control table carries a warning:\n%s", cbody)
	}
}
