package exp

import (
	"fmt"
	"math"
	"math/bits"

	"cuckoodir/internal/cmpsim"
	"cuckoodir/internal/core"
	"cuckoodir/internal/directory"
	"cuckoodir/internal/hashfn"
	"cuckoodir/internal/plot"
	"cuckoodir/internal/rng"
	"cuckoodir/internal/stats"
	"cuckoodir/internal/workload"
)

// fig7Sets sizes each d-ary table to ~32K entries so a fixed key budget
// sweeps the whole occupancy range (the curves are capacity-independent).
func fig7Sets(ways int) int {
	switch ways {
	case 2:
		return 16384
	case 3:
		return 8192
	case 4:
		return 8192
	case 8:
		return 4096
	default:
		sets := 32768 / ways
		return 1 << uint(bits.Len(uint(sets-1))-1)
	}
}

// fig7Exp regenerates Figure 7: d-ary cuckoo hash characteristics as a
// function of occupancy, with strong hash functions.
func fig7Exp() Experiment {
	return Experiment{
		ID:    "fig7",
		Title: "Figure 7: Cuckoo hash characteristics (insertion attempts, failure probability vs occupancy)",
		Expect: "Below 50% occupancy, 3-ary and wider tables average <= 2 attempts (success on the " +
			"initial lookup or one displacement); up to 65% occupancy they see zero insertion failures. " +
			"2-ary degrades much earlier (threshold ~50%).",
		Run: func(o Options) []*stats.Table {
			keys := 100000
			if o.Scale == Quick {
				keys = 50000
			}
			degrees := []int{2, 3, 4, 8}
			results := make(map[int][]core.OccupancyBin)
			for _, d := range degrees {
				results[d] = core.Characterize(core.CharacterizeConfig{
					Ways:       d,
					SetsPerWay: fig7Sets(d),
					Keys:       keys * 2, // sweep past the load threshold
					Bins:       20,
					Seed:       o.Seed + uint64(d),
					Hash:       hashfn.Strong{},
				})
			}
			att := stats.NewTable("Figure 7 (left): average insertion attempts vs occupancy",
				"Occupancy", "2-ary", "3-ary", "4-ary", "8-ary")
			fail := stats.NewTable("Figure 7 (right): insertion failure probability vs occupancy",
				"Occupancy", "2-ary", "3-ary", "4-ary", "8-ary")
			for bin := 0; bin < 20; bin++ {
				occ := fmt.Sprintf("%.2f", float64(bin+1)/20)
				attRow, failRow := []string{occ}, []string{occ}
				for _, d := range degrees {
					b := results[d][bin]
					if b.Insertions == 0 {
						attRow = append(attRow, "-")
						failRow = append(failRow, "-")
						continue
					}
					attRow = append(attRow, fmt.Sprintf("%.2f", b.MeanAttempts))
					failRow = append(failRow, pctCell(b.FailureProb))
				}
				att.AddRow(attRow...)
				fail.AddRow(failRow...)
			}
			att.AddNote("%d random keys per degree, strong (avalanche) hash functions, 32-attempt cap", keys*2)
			fail.AddNote("'-' marks occupancy bins the structure never reached (insertions saturate below 100%%)")

			// Attach the paper's two curves as charts.
			xLabels := make([]string, 20)
			attY := map[int][]float64{}
			failY := map[int][]float64{}
			for _, d := range degrees {
				attY[d] = make([]float64, 20)
				failY[d] = make([]float64, 20)
			}
			for bin := 0; bin < 20; bin++ {
				xLabels[bin] = fmt.Sprintf("%.2f", float64(bin+1)/20)
				for _, d := range degrees {
					b := results[d][bin]
					if b.Insertions == 0 {
						attY[d][bin] = math.NaN()
						failY[d][bin] = math.NaN()
						continue
					}
					attY[d][bin] = b.MeanAttempts
					failY[d][bin] = b.FailureProb * 100
				}
			}
			markers := map[int]rune{2: '2', 3: '3', 4: '4', 8: '8'}
			attCh := plot.NewChart("", xLabels)
			attCh.YLabel = "average insertion attempts"
			failCh := plot.NewChart("", xLabels)
			failCh.YLabel = "insertion failure probability (%)"
			for _, d := range degrees {
				attCh.Add(fmt.Sprintf("%d-ary", d), markers[d], attY[d])
				failCh.Add(fmt.Sprintf("%d-ary", d), markers[d], failY[d])
			}
			att.AddChart(attCh.String())
			fail.AddChart(failCh.String())
			return []*stats.Table{att, fail}
		},
	}
}

// hashesExp reproduces §5.5 (hash function selection): skewing vs strong
// families across provisioning factors, on the workloads where the paper
// reports differences (ocean on Private-L2, plus the Shared-L2 worst case
// oracle).
func hashesExp() Experiment {
	return Experiment{
		ID:    "hashes",
		Title: "§5.5: Hash function selection (skewing vs strong families)",
		Expect: "No measurable difference at comfortable provisioning; strong hashes offer the most " +
			"benefit under adverse conditions — the paper sees it under severe under-provisioning; here " +
			"the sharpest adverse case is UNSCATTERED (physically contiguous) addresses, where the linear " +
			"skewing functions form translation-invariant conflict groups and thrash while strong hashes " +
			"stay near one attempt. The OS's page scatter is what keeps skewing viable in practice.",
		Run: func(o Options) []*stats.Table {
			t := stats.NewTable("Hash family comparison",
				"Config", "Workload", "Size", "Prov", "Addresses", "Hash", "Avg attempts", "Inval rate")
			type point struct {
				kind  cmpsim.Kind
				wl    string
				size  cmpsim.CuckooSize
				paged bool
			}
			points := []point{
				{cmpsim.SharedL2, "oracle", cmpsim.CuckooSize{Ways: 4, Sets: 512}, true},
				{cmpsim.SharedL2, "oracle", cmpsim.CuckooSize{Ways: 4, Sets: 256}, true},
				{cmpsim.SharedL2, "oracle", cmpsim.CuckooSize{Ways: 3, Sets: 256}, true},
				{cmpsim.PrivateL2, "ocean", cmpsim.CuckooSize{Ways: 3, Sets: 8192}, true},
				{cmpsim.PrivateL2, "ocean", cmpsim.CuckooSize{Ways: 3, Sets: 4096}, true},
				{cmpsim.PrivateL2, "ocean", cmpsim.CuckooSize{Ways: 3, Sets: 2048}, true},
				// Adverse case: raw contiguous (unpaged) addresses.
				{cmpsim.SharedL2, "oracle", cmpsim.CuckooSize{Ways: 4, Sets: 512}, false},
				{cmpsim.PrivateL2, "ocean", cmpsim.CuckooSize{Ways: 3, Sets: 8192}, false},
			}
			if o.Scale == Quick {
				points = []point{points[0], points[2], points[3], points[5], points[6], points[7]}
			}
			families := []string{"skew", "strong"}
			results := parallelMap(len(points)*len(families), func(i int) *core.DirStats {
				pt, hname := points[i/len(families)], families[i%len(families)]
				cfg := cmpsim.DefaultConfig(pt.kind)
				prof, err := workload.ByName(pt.wl)
				if err != nil {
					panic(err)
				}
				prof.DisablePaging = !pt.paged
				var fam hashfn.Family
				if hname == "skew" {
					fam = hashfn.NewSkew(bits.TrailingZeros(uint(pt.size.Sets)))
				} else {
					fam = hashfn.Strong{}
				}
				sys := runSystem(cfg, prof, o, cmpsim.CuckooFactory(pt.size, fam))
				return sys.DirStats()
			})
			for pi, pt := range points {
				cfg := cmpsim.DefaultConfig(pt.kind)
				addrs := "paged"
				if !pt.paged {
					addrs = "contiguous"
				}
				for fi, hname := range families {
					ds := results[pi*len(families)+fi]
					t.AddRow(pt.kind.String(), pt.wl, pt.size.String(),
						fmt.Sprintf("%.3gx", pt.size.Provisioning(cfg)),
						addrs, hname,
						fmt.Sprintf("%.2f", ds.Attempts.Mean()),
						pctCell(ds.InvalidationRate()))
				}
			}
			return []*stats.Table{t}
		},
	}
}

// ablationExp runs the §6 design ablations on the raw hash structure:
// bucketized ways (Panigrahy) and a victim stash (Kirsch et al.).
func ablationExp() Experiment {
	return Experiment{
		ID:    "ablation",
		Title: "§6 ablations: bucketized ways and victim stash",
		Expect: "Bucketizing raises the usable occupancy of a 3-ary table toward (and past) a plain " +
			"4-ary design, 'potentially allowing a smaller and more power-efficient 3-ary design'. A " +
			"small stash absorbs rare overflows but the directory 'does not benefit from a stash' at the " +
			"paper's provisioning, because failures are already near zero. The Elbow cache (one " +
			"displacement per insertion) lands between Skewed and Cuckoo: it 'experiences more forced " +
			"invalidations than the Cuckoo directory'.",
		Run: func(o Options) []*stats.Table {
			keys := 90000
			if o.Scale == Quick {
				keys = 45000
			}
			type variant struct {
				name   string
				ways   int
				sets   int
				bucket int
				stash  int
			}
			variants := []variant{
				{"3-ary", 3, 8192, 1, 0},
				{"4-ary", 4, 8192, 1, 0},
				{"3-ary, 2-entry buckets", 3, 4096, 2, 0},
				{"3-ary + 4-entry stash", 3, 8192, 1, 4},
				{"3-ary + 16-entry stash", 3, 8192, 1, 16},
			}
			t := stats.NewTable("Cuckoo structure ablations (strong hashes)",
				"Variant", "Capacity", "Attempts@60%", "Attempts@75%", "Fail%@75%", "Fail%@90%", "Max occupancy")
			for _, v := range variants {
				bins := core.Characterize(core.CharacterizeConfig{
					Ways:       v.ways,
					SetsPerWay: v.sets,
					Keys:       keys,
					Bins:       20,
					Seed:       o.Seed + 99,
					Hash:       hashfn.Strong{},
					BucketSize: v.bucket,
					StashSize:  v.stash,
				})
				att := func(occ float64) string {
					b := bins[int(occ*20)-1]
					if b.Insertions == 0 {
						return "-"
					}
					return fmt.Sprintf("%.2f", b.MeanAttempts)
				}
				failAt := func(occ float64) string {
					b := bins[int(occ*20)-1]
					if b.Insertions == 0 {
						return "-"
					}
					return pctCell(b.FailureProb)
				}
				maxOcc := 0.0
				for _, b := range bins {
					if b.Insertions > 0 {
						maxOcc = b.Occupancy
					}
				}
				t.AddRow(v.name,
					fmt.Sprintf("%d", v.ways*v.sets*max(1, v.bucket)),
					att(0.60), att(0.75), failAt(0.75), failAt(0.90),
					fmt.Sprintf("%.2f", maxOcc))
			}
			return []*stats.Table{t, elbowTable(o)}
		},
	}
}

// elbowTable compares displacement budgets — Skewed (0), Elbow (1),
// Cuckoo (unbounded-but-capped) — at equal geometry on random fills to
// successive occupancies.
func elbowTable(o Options) *stats.Table {
	const ways, sets = 4, 4096
	t := stats.NewTable("Displacement budget: forced evictions on a random fill (4x4096, skew hashes)",
		"Fill", "Skewed (0 displacements)", "Elbow (1)", "Cuckoo (<=32)")
	fills := []float64{0.70, 0.80, 0.90}
	type row struct{ sk, el, ck uint64 }
	rows := parallelMap(len(fills), func(i int) row {
		n := int(fills[i] * float64(ways*sets))
		drive := func(d directory.Directory) uint64 {
			r := rng.New(o.Seed + 17)
			for k := 0; k < n; k++ {
				d.Read(r.Uint64(), 0)
			}
			return d.Stats().ForcedEvictions
		}
		return row{
			sk: drive(directory.MustBuild(directory.Spec{
				Org: directory.OrgSkewed, NumCaches: 4,
				Geometry: directory.Geometry{Ways: ways, Sets: sets},
			})),
			el: drive(directory.MustBuild(directory.Spec{
				Org: directory.OrgElbow, NumCaches: 4,
				Geometry: directory.Geometry{Ways: ways, Sets: sets},
			})),
			ck: drive(directory.MustBuild(cuckooSpec(ways, sets).WithCaches(4))),
		}
	})
	for i, f := range fills {
		t.AddRow(fmt.Sprintf("%.0f%%", f*100),
			fmt.Sprintf("%d", rows[i].sk),
			fmt.Sprintf("%d", rows[i].el),
			fmt.Sprintf("%d", rows[i].ck))
	}
	t.AddNote("each extra displacement of budget cuts forced evictions by an order of magnitude (paper §6 on Elbow caches)")
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
