package exp

import (
	"fmt"
	"math"

	"cuckoodir/internal/energy"
	"cuckoodir/internal/plot"
	"cuckoodir/internal/stats"
)

// seriesMarkers assigns one distinct rune per organization in lineup
// order (Duplicate-Tag, Tagless, Sparse 8x, In-Cache, Hier, Coarse,
// Cuckoo Hier, Cuckoo Coarse).
var seriesMarkers = []rune{'D', 'T', 'S', 'I', 'H', 'C', 'h', 'c'}

// projectionTable renders an energy or area sweep for a lineup of
// organizations over the paper's core counts, with an attached log-scale
// chart mirroring the paper's figure.
func projectionTable(title, unit string, lineup []energy.Organization,
	mkSystem func(cores int) energy.System, pick func(energy.Estimate) float64) *stats.Table {
	headers := []string{"Cores"}
	for _, org := range lineup {
		headers = append(headers, org.Name())
	}
	t := stats.NewTable(title, headers...)
	p := energy.DefaultParams()
	mix := energy.PaperMix()

	cores := energy.CoreCounts()
	xLabels := make([]string, len(cores))
	values := make([][]float64, len(lineup))
	for i := range values {
		values[i] = make([]float64, len(cores))
	}
	for ci, n := range cores {
		xLabels[ci] = fmt.Sprintf("%d", n)
		sys := mkSystem(n)
		row := []string{xLabels[ci]}
		for oi, org := range lineup {
			if !org.AppliesTo(sys) {
				row = append(row, "n/a")
				values[oi][ci] = math.NaN()
				continue
			}
			v := pick(org.Estimate(sys, p, mix))
			row = append(row, fmt.Sprintf("%.1f%%", v*100))
			values[oi][ci] = v * 100
		}
		t.AddRow(row...)
	}
	t.AddNote("unit: %s", unit)

	ch := plot.NewChart("", xLabels)
	ch.LogY = true
	ch.YLabel = unit
	ch.Height = 18
	for oi, org := range lineup {
		ch.Add(org.Name(), seriesMarkers[oi%len(seriesMarkers)], values[oi])
	}
	t.AddChart(ch.String())
	return t
}

// fig4Exp regenerates Figure 4: area (top) and energy (bottom) scalability
// of prior directory organizations, Private-L2 axis labelling ("2 caches
// per core [I+D]" — the shared-cache system's L1-tracking directory).
func fig4Exp() Experiment {
	return Experiment{
		ID:    "fig4",
		Title: "Figure 4: Area and energy scalability of prior directory organizations",
		Expect: "Duplicate-Tag and Tagless energy grow ~linearly per core (quadratic aggregate); " +
			"Tagless and Duplicate-Tag area stay flat and small; Sparse 8x full-vector grows linearly in " +
			"both; Sparse 8x Coarse/Hierarchical energy/area stay nearly flat but area sits high (8x " +
			"over-provisioning); In-Cache area grows linearly, crossing the Sparse variants near ~128 cores.",
		Run: func(o Options) []*stats.Table {
			lineup := energy.Figure4Lineup()
			mk := energy.SharedL2System
			return []*stats.Table{
				projectionTable("Figure 4 (top): directory area per core vs core count (2 caches/core I+D)",
					"% of 1MB L2 data array area", lineup, mk,
					func(e energy.Estimate) float64 { return e.AreaPerCore }),
				projectionTable("Figure 4 (bottom): directory energy per operation vs core count (2 caches/core I+D)",
					"% of 1MB 16-way L2 tag lookup energy", lineup, mk,
					func(e energy.Estimate) float64 { return e.EnergyPerOp }),
			}
		},
	}
}

// fig13Exp regenerates Figure 13: the full power/area comparison including
// the Cuckoo variants, for both configurations.
func fig13Exp() Experiment {
	return Experiment{
		ID:    "fig13",
		Title: "Figure 13: Power and area comparison of directory organizations (incl. Cuckoo)",
		Expect: "Cuckoo Coarse/Hierarchical: flat, low energy at all core counts; area rivaling " +
			"Duplicate-Tag/Tagless and ~7x below Sparse 8x Coarse/Hierarchical; Tagless energy overtakes " +
			"everything beyond ~128 cores; In-Cache (Shared-L2 only) area explodes past ~128 cores. " +
			"Shared-L2 Cuckoo area < 3% of L2 at 1024 cores; Private-L2 < 30%.",
		Run: func(o Options) []*stats.Table {
			var out []*stats.Table
			for _, shared := range []bool{true, false} {
				label := "Shared-L2 (2 caches per core [I+D])"
				mk := energy.SharedL2System
				if !shared {
					label = "Private-L2 (1 cache per core)"
					mk = energy.PrivateL2System
				}
				lineup := energy.Figure13Lineup(shared)
				out = append(out,
					projectionTable("Figure 13: energy per op, "+label,
						"% of 1MB 16-way L2 tag lookup energy", lineup, mk,
						func(e energy.Estimate) float64 { return e.EnergyPerOp }),
					projectionTable("Figure 13: area per core, "+label,
						"% of 1MB L2 data array area", lineup, mk,
						func(e energy.Estimate) float64 { return e.AreaPerCore }),
				)
			}
			return out
		},
	}
}
