package exp

import (
	"runtime"
	"sync"
)

// parallelMap runs fn(0..n-1) across up to GOMAXPROCS goroutines and
// returns the results in index order. Every simulation run is an
// independent deterministic System, so parallel execution produces
// bit-identical tables to sequential execution — only wall time changes.
func parallelMap[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
