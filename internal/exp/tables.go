package exp

import (
	"fmt"

	"cuckoodir/internal/cmpsim"
	"cuckoodir/internal/stats"
	"cuckoodir/internal/workload"
)

// table1Exp prints the simulated system parameters (Table 1), derived from
// the live configuration structs so the table cannot drift from the code.
func table1Exp() Experiment {
	return Experiment{
		ID:     "table1",
		Title:  "Table 1: System parameters",
		Expect: "16-core CMP; split I/D 64KB 2-way L1s; 1MB/core 16-way L2; 64-byte blocks; 48-bit addresses.",
		Run: func(o Options) []*stats.Table {
			t := stats.NewTable("Table 1: System parameters", "Parameter", "Value")
			sh := cmpsim.DefaultConfig(cmpsim.SharedL2)
			pr := cmpsim.DefaultConfig(cmpsim.PrivateL2)
			t.AddRow("CMP size", fmt.Sprintf("%d cores", sh.Cores))
			t.AddRow("L1 caches", fmt.Sprintf("split I/D, %d sets x %d ways (64KB), 64-byte blocks, write-back",
				sh.TrackedSets, sh.TrackedAssoc))
			t.AddRow("Private L2 caches", fmt.Sprintf("%d sets x %d ways (1MB per core), 64-byte blocks",
				pr.TrackedSets, pr.TrackedAssoc))
			t.AddRow("Directory slices", fmt.Sprintf("%d, block-address interleaved", sh.Slices()))
			t.AddRow("Shared-L2 1x slice capacity", fmt.Sprintf("%d entries", sh.OneXSliceCapacity()))
			t.AddRow("Private-L2 1x slice capacity", fmt.Sprintf("%d entries", pr.OneXSliceCapacity()))
			t.AddRow("Address space", "48-bit")
			return []*stats.Table{t}
		},
	}
}

// table2Exp prints the workload suite (Table 2) with the synthetic
// generator parameters standing in for each application.
func table2Exp() Experiment {
	return Experiment{
		ID:     "table2",
		Title:  "Table 2: Application parameters",
		Expect: "OLTP (DB2, Oracle), DSS (TPC-H Q2/Q16/Q17), Web (Apache, Zeus), Scientific (em3d, ocean).",
		Run: func(o Options) []*stats.Table {
			t := stats.NewTable("Table 2: Application parameters (synthetic stand-ins)",
				"Workload", "Class", "Paper application", "Code blk", "Shared blk", "Private blk/core", "Wr frac")
			for _, p := range workload.Profiles() {
				t.AddRowf(p.Name, p.Class, p.Table2, p.CodeBlocks, p.SharedBlocks, p.PrivateBlocks, p.WriteFrac)
			}
			t.AddNote("footprints are 64-byte blocks; streaming workloads sweep their private region sequentially")
			return []*stats.Table{t}
		},
	}
}
