package exp

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cuckoodir/internal/directory"
	"cuckoodir/internal/engine"
	"cuckoodir/internal/rng"
	"cuckoodir/internal/stats"
)

// resizeExp measures what an online per-shard resize costs the shards
// that are NOT resizing: multi-producer engine traffic runs in three
// phases — before, during and after a live migration of shard 0 — and
// each phase reports shard 0's throughput next to the other shards'.
// Like `replay` it measures THIS IMPLEMENTATION (the tentpole of the
// online-resize work), not a paper artifact; the paper's motivation is
// §4.3's point that a cuckoo directory can be provisioned lean exactly
// because it can be re-provisioned without stopping the world.
func resizeExp() Experiment {
	return Experiment{
		ID: "resize",
		Title: "Online resize: non-resizing shards' throughput through another " +
			"shard's live migration (implementation artifact)",
		Expect: "The during-migration phase completes the whole migration without stopping traffic; " +
			"the non-resizing shards' per-shard throughput stays within noise of the before/after " +
			"phases (the migration steals only shard 0's lock and its drainer's idle cycles), " +
			"and zero entries are lost to forced migration evictions.",
		Run: func(o Options) []*stats.Table {
			perPhase := 120_000
			sets := 1024
			// The address space is sized so each shard's distinct
			// population saturates at half the GROWN table's capacity:
			// the base table is overloaded (the scenario that motivates
			// growing) while migration replays always find room, so the
			// zero-forced-migration invariant holds by construction, not
			// by scheduling luck.
			addrBits := 16
			if o.Scale == Full {
				perPhase = 2_000_000
				sets = 8192
				addrBits = 18
			}
			const (
				cores     = 16
				shards    = 8
				producers = 4
			)
			dir, err := directory.BuildSharded(directory.Spec{
				Org:       directory.OrgCuckoo,
				NumCaches: cores,
				Geometry:  directory.Geometry{Ways: 4, Sets: sets},
			}, shards)
			if err != nil {
				panic(fmt.Sprintf("exp: resize: %v", err))
			}
			eng, err := engine.New(dir, engine.Options{MigrationRun: 64})
			if err != nil {
				panic(fmt.Sprintf("exp: resize: %v", err))
			}

			// runPhase drives producers*perPhase accesses (fixed batches,
			// detached) and waits for completion, returning the wall time.
			runPhase := func(phase int) time.Duration {
				start := time.Now()
				var wg sync.WaitGroup
				for p := 0; p < producers; p++ {
					wg.Add(1)
					go func(p int) {
						defer wg.Done()
						r := rng.New(o.Seed + uint64(phase*producers+p) + 1)
						ctx := context.Background()
						batch := make([]directory.Access, 0, 256)
						for i := 0; i < perPhase/producers; i++ {
							kind := directory.AccessRead
							if r.Uint64()%4 == 0 {
								kind = directory.AccessWrite
							}
							batch = append(batch, directory.Access{
								Kind:  kind,
								Addr:  r.Uint64() & (1<<addrBits - 1),
								Cache: int(r.Uint64() % cores),
							})
							if len(batch) == 256 {
								if err := eng.SubmitDetached(ctx, batch); err != nil {
									panic(fmt.Sprintf("exp: resize: %v", err))
								}
								batch = make([]directory.Access, 0, 256)
							}
						}
						if len(batch) > 0 {
							if err := eng.SubmitDetached(ctx, batch); err != nil {
								panic(fmt.Sprintf("exp: resize: %v", err))
							}
						}
					}(p)
				}
				wg.Wait()
				if err := eng.Flush(context.Background()); err != nil {
					panic(fmt.Sprintf("exp: resize: %v", err))
				}
				return time.Since(start)
			}

			t := stats.NewTable(
				fmt.Sprintf("Online resize under load (%d shards, %d producers, %d accesses/phase; shard 0 grows 4x mid-run)",
					shards, producers, perPhase),
				"Phase", "kacc/s", "Shard0 kacc/s", "Others kacc/s", "Migrated", "Mig runs")
			prevEng := eng.Stats()
			snap := dir.CountersByShard()
			for phase, name := range []string{"before", "during", "after"} {
				if name == "during" {
					if err := eng.ResizeShardSpec(0, directory.Spec{
						Org:      directory.OrgCuckoo,
						Geometry: directory.Geometry{Ways: 4, Sets: 4 * sets},
					}); err != nil {
						panic(fmt.Sprintf("exp: resize: %v", err))
					}
				}
				elapsed := runPhase(phase)
				if name == "during" {
					// The phase's traffic has drained; let the drainers run
					// the migration dry before the "after" phase so the
					// phases stay cleanly separated.
					for dir.MigratingShards() != 0 {
						time.Sleep(100 * time.Microsecond)
					}
				}
				now := dir.CountersByShard()
				var shard0, others float64
				for h := range now {
					kaccs := float64(now[h].Ops()-snap[h].Ops()) / elapsed.Seconds() / 1e3
					if h == 0 {
						shard0 = kaccs
					} else {
						others += kaccs
					}
				}
				snap = now
				es := eng.Stats()
				t.AddRow(name,
					fmt.Sprintf("%.0f", float64(perPhase)/elapsed.Seconds()/1e3),
					fmt.Sprintf("%.0f", shard0),
					fmt.Sprintf("%.0f", others/(shards-1)),
					fmt.Sprintf("%d", es.MigratedEntries-prevEng.MigratedEntries),
					fmt.Sprintf("%d", es.MigrationRuns-prevEng.MigrationRuns))
				prevEng = es
			}
			health := eng.Health()
			if err := eng.Close(); err != nil {
				panic(fmt.Sprintf("exp: resize: %v", err))
			}
			rs := dir.ResizeStats()
			t.AddNote("resizes started/completed: %d/%d; forced evictions during migration: %d (must be 0 — no entry lost)",
				rs.Started, rs.Completed, rs.MigrationForced)
			if gf := eng.Stats().GrowFailures; gf > 0 || health.LastGrowError != nil {
				t.AddNote("WARNING: %d automatic-grow failures (last: %v) — throughput above ran against a capacity-capped directory",
					gf, health.LastGrowError)
			}
			t.AddNote("per-shard rates are computed from the lock-free CountersByShard deltas; absolute acc/s is host-dependent, the before/during/after ratios travel")
			return []*stats.Table{t}
		},
	}
}
