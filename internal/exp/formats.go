package exp

import (
	"fmt"
	"strings"

	"cuckoodir/internal/cmpsim"
	"cuckoodir/internal/core"
	"cuckoodir/internal/directory"
	"cuckoodir/internal/sharer"
	"cuckoodir/internal/stats"
	"cuckoodir/internal/workload"
)

// formatsExp quantifies the §6 claim that the Cuckoo organization composes
// with any entry-compression technique: the same 4x512 Shared-L2 Cuckoo
// directory runs with full-vector, coarse, limited-pointer and
// hierarchical entries, and the experiment reports what each compressed
// format costs in spurious invalidation traffic and dead-entry residency
// against the storage it saves.
func formatsExp() Experiment {
	return Experiment{
		ID:    "formats",
		Title: "§6 extension: sharer-set formats inside the Cuckoo directory",
		Expect: "Full vectors: exact, zero spurious invalidations, linear storage. Coarse (2*log2 C " +
			"bits) and limited pointers: large storage savings, paid for with spurious invalidations on " +
			"widely-shared blocks and entries that outlive their sharers. Hierarchical: exact at " +
			"sqrt-scaled root cost plus replicated second-level tags.",
		Run: func(o Options) []*stats.Table {
			cfg := cmpsim.DefaultConfig(cmpsim.SharedL2)
			size := cmpsim.ChosenCuckooSize(cmpsim.SharedL2)
			numCaches := cfg.NumCaches()
			formats := []sharer.Format{
				sharer.FullFormat(),
				sharer.CoarseFormat(),
				sharer.LimitedFormat(4),
				sharer.HierFormat(),
			}
			// The format sweep's base organization(s): the paper's chosen
			// 4x512 slice by default, or — under `run -dir` — every named
			// organization that can carry a sharer format (a plain,
			// unsharded cuckoo spec without a format of its own).
			type base struct {
				name string
				spec directory.Spec
			}
			bases := []base{{"", cuckooSpec(size.Ways, size.Sets)}}
			var skipped []string
			overridden := false
			if over := orgOverrides(o, numCaches); over != nil {
				overridden = true
				bases = bases[:0]
				for _, ns := range over {
					if ns.spec.Org != directory.OrgCuckoo || ns.spec.Shard.Count > 0 || ns.spec.Format.New != nil {
						skipped = append(skipped, ns.name)
						continue
					}
					bases = append(bases, base{ns.name, ns.spec})
				}
			}
			headers := []string{"Format", "Entry bits", "Spurious invalidations", "Spurious/insert", "Dead entries (end)", "Inval rate"}
			title := "Sharer-set formats in a 4x512 Cuckoo directory (Shared-L2, workload apache)"
			if overridden {
				headers = append([]string{"Organization"}, headers...)
				title = "Sharer-set formats swept over -dir organizations (Shared-L2, workload apache)"
			}
			t := stats.NewTable(title, headers...)
			prof, err := workload.ByName("apache")
			if err != nil {
				panic(err)
			}
			type result struct {
				spurious uint64
				dead     int
				ds       *directory.Stats
			}
			results := parallelMap(len(bases)*len(formats), func(i int) result {
				spec := bases[i/len(formats)].spec
				spec.Format = formats[i%len(formats)]
				sys := runSystem(cfg, prof, o, cmpsim.SpecFactory(spec))
				var res result
				for _, d := range sys.Slices() {
					fd := d.(*directory.FormattedCuckoo)
					res.spurious += fd.SpuriousInvalidations
					res.dead += fd.DeadEntries()
				}
				res.ds = sys.DirStats()
				return res
			})
			for bi, bs := range bases {
				for fi, f := range formats {
					res := results[bi*len(formats)+fi]
					inserts := res.ds.Events.Get(core.EvInsertTag)
					perInsert := 0.0
					if inserts > 0 {
						perInsert = float64(res.spurious) / float64(inserts)
					}
					row := []string{f.Name,
						fmt.Sprintf("%d", f.BitsFor(numCaches)),
						fmt.Sprintf("%d", res.spurious),
						fmt.Sprintf("%.4f", perInsert),
						fmt.Sprintf("%d", res.dead),
						pctCell(res.ds.InvalidationRate())}
					if overridden {
						row = append([]string{bs.name}, row...)
					}
					t.AddRow(row...)
				}
			}
			t.AddNote("entry bits exclude the tag; hierarchical second-level storage is counted by the energy model")
			if len(skipped) > 0 {
				t.AddNote("skipped -dir organizations that cannot carry a sharer format (need a plain unsharded cuckoo spec): %s",
					strings.Join(skipped, ", "))
			}
			if len(bases) == 0 {
				t.AddNote("no eligible -dir organization: nothing measured")
			}
			return []*stats.Table{t}
		},
	}
}
