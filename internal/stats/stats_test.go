package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(32)
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram: count=%d mean=%f", h.Count(), h.Mean())
	}
	h.Add(1)
	h.Add(1)
	h.Add(4)
	if got := h.Count(); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	if got := h.Bucket(1); got != 2 {
		t.Errorf("Bucket(1) = %d, want 2", got)
	}
	if got := h.Mean(); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("Mean = %f, want 2", got)
	}
	if got := h.Fraction(1); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Fraction(1) = %f, want 2/3", got)
	}
}

func TestHistogramClamp(t *testing.T) {
	h := NewHistogram(32)
	h.Add(100) // clamps to 32, as the paper counts capped insertions
	h.Add(-5)  // clamps to 0
	if got := h.Bucket(32); got != 1 {
		t.Errorf("Bucket(32) = %d, want 1", got)
	}
	if got := h.Bucket(0); got != 1 {
		t.Errorf("Bucket(0) = %d, want 1", got)
	}
	if got := h.Mean(); math.Abs(got-16.0) > 1e-12 {
		t.Errorf("Mean = %f, want 16", got)
	}
}

func TestHistogramFractionAtLeast(t *testing.T) {
	h := NewHistogram(10)
	for v := 1; v <= 10; v++ {
		h.Add(v)
	}
	if got := h.FractionAtLeast(6); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("FractionAtLeast(6) = %f, want 0.5", got)
	}
	if got := h.FractionAtLeast(0); got != 1 {
		t.Errorf("FractionAtLeast(0) = %f, want 1", got)
	}
	if got := h.FractionAtLeast(11); got != 0 {
		t.Errorf("FractionAtLeast(11) = %f, want 0", got)
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(100)
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	if got := h.Percentile(0.5); got != 50 {
		t.Errorf("P50 = %d, want 50", got)
	}
	if got := h.Percentile(1.0); got != 100 {
		t.Errorf("P100 = %d, want 100", got)
	}
	if got := h.Percentile(0.01); got != 1 {
		t.Errorf("P1 = %d, want 1", got)
	}
}

func TestHistogramMergeAndReset(t *testing.T) {
	a, b := NewHistogram(8), NewHistogram(8)
	a.Add(2)
	b.Add(4)
	b.Add(4)
	a.Merge(b)
	if a.Count() != 3 || a.Bucket(4) != 2 {
		t.Errorf("after merge: count=%d bucket4=%d", a.Count(), a.Bucket(4))
	}
	a.Reset()
	if a.Count() != 0 || a.Mean() != 0 {
		t.Errorf("after reset: count=%d mean=%f", a.Count(), a.Mean())
	}
}

func TestHistogramMergeMixedRanges(t *testing.T) {
	// Merging a wider histogram grows the receiver; merging a narrower
	// one lands its samples at their recorded values.
	small, large := NewHistogram(1), NewHistogram(8)
	small.Add(1)
	large.Add(5)
	small.Merge(large)
	if small.Max() != 8 || small.Count() != 2 || small.Bucket(5) != 1 || small.Bucket(1) != 1 {
		t.Errorf("after growing merge: max=%d count=%d b5=%d b1=%d",
			small.Max(), small.Count(), small.Bucket(5), small.Bucket(1))
	}
	wide := NewHistogram(8)
	narrow := NewHistogram(1)
	narrow.Add(7) // clamps to 1
	wide.Merge(narrow)
	if wide.Bucket(1) != 1 || wide.Count() != 1 {
		t.Errorf("after narrowing merge: b1=%d count=%d", wide.Bucket(1), wide.Count())
	}
	if mean := wide.Mean(); mean != 1 {
		t.Errorf("clamped sample mean = %f, want 1", mean)
	}
}

// Property: mean is always within [0, max] and Count equals samples added.
func TestHistogramMeanBounds(t *testing.T) {
	f := func(vals []uint8) bool {
		h := NewHistogram(32)
		for _, v := range vals {
			h.Add(int(v))
		}
		if h.Count() != uint64(len(vals)) {
			return false
		}
		m := h.Mean()
		return m >= 0 && m <= 32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLog2Bucket(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
		{1<<63 - 1, 63}, {1 << 63, 64}, {math.MaxUint64, 64},
	}
	for _, c := range cases {
		if got := Log2Bucket(c.v); got != c.want {
			t.Errorf("Log2Bucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestLog2BucketCeil(t *testing.T) {
	cases := []struct {
		b    int
		want uint64
	}{
		{-1, 0}, {0, 0}, {1, 1}, {2, 3}, {3, 7}, {10, 1023},
		{64, math.MaxUint64}, {99, math.MaxUint64},
	}
	for _, c := range cases {
		if got := Log2BucketCeil(c.b); got != c.want {
			t.Errorf("Log2BucketCeil(%d) = %d, want %d", c.b, got, c.want)
		}
	}
}

// Property: the bucket round-trip never under-reports — every value is
// at most its bucket's inclusive upper bound, and above the previous
// bucket's.
func TestLog2BucketRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		b := Log2Bucket(v)
		return v <= Log2BucketCeil(b) && (b == 0 || v > Log2BucketCeil(b-1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// histFrom builds a histogram over log2-bucket indices from raw sample
// values — the shape the engine's latency pipeline produces.
func histFrom(vals []uint16) *Histogram {
	h := NewHistogram(NumLog2Buckets - 1)
	for _, v := range vals {
		h.Add(Log2Bucket(uint64(v)))
	}
	return h
}

// Property: Merge is associative and commutative — per-drainer
// snapshots can be folded in any order without changing counts, sums or
// any percentile.
func TestHistogramMergeAssociative(t *testing.T) {
	f := func(xs, ys, zs []uint16) bool {
		// (x + y) + z
		l := histFrom(xs)
		l.Merge(histFrom(ys))
		l.Merge(histFrom(zs))
		// z + (y + x)
		r := histFrom(zs)
		yx := histFrom(ys)
		yx.Merge(histFrom(xs))
		r.Merge(yx)
		if l.Count() != r.Count() || l.Mean() != r.Mean() {
			return false
		}
		for _, p := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
			if l.Percentile(p) != r.Percentile(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are stable under merge fan-in — merging k
// copies of the same histogram (k drainers observing the same
// distribution) reports exactly the single-copy percentiles.
func TestHistogramPercentileStableUnderMerge(t *testing.T) {
	f := func(vals []uint16, k uint8) bool {
		if len(vals) == 0 {
			return true
		}
		one := histFrom(vals)
		merged := histFrom(vals)
		for i := 0; i < int(k%8); i++ {
			merged.Merge(one)
		}
		for _, p := range []float64{0.5, 0.99, 0.999} {
			if merged.Percentile(p) != one.Percentile(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	var m Mean
	m.Add(1)
	m.Add(3)
	if got := m.Value(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %f, want 2", got)
	}
	m.AddN(10, 2) // two samples summing to 10
	if got := m.Value(); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("Mean = %f, want 3.5", got)
	}
	if m.Count() != 4 {
		t.Errorf("Count = %d, want 4", m.Count())
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Error("empty ratio should be 0")
	}
	r.Observe(true)
	r.Observe(false)
	r.Observe(true)
	r.Observe(true)
	if got := r.Value(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Ratio = %f, want 0.75", got)
	}
}

func TestCounterSet(t *testing.T) {
	c := NewCounterSet()
	c.Inc("insert")
	c.Inc("insert")
	c.AddTo("evict", 3)
	if got := c.Get("insert"); got != 2 {
		t.Errorf("insert = %d, want 2", got)
	}
	if got := c.Total(); got != 5 {
		t.Errorf("Total = %d, want 5", got)
	}
	fr := c.Fractions()
	if math.Abs(fr["insert"]-0.4) > 1e-12 {
		t.Errorf("fraction insert = %f, want 0.4", fr["insert"])
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "insert" || names[1] != "evict" {
		t.Errorf("Names = %v", names)
	}
	d := NewCounterSet()
	d.Inc("evict")
	d.Inc("new")
	c.Merge(d)
	if c.Get("evict") != 4 || c.Get("new") != 1 {
		t.Errorf("after merge: evict=%d new=%d", c.Get("evict"), c.Get("new"))
	}
	sorted := c.SortedNames()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			t.Errorf("SortedNames not sorted: %v", sorted)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %f, want 4", got)
	}
	if got := GeoMean([]float64{0, -1}); got != 0 {
		t.Errorf("GeoMean of non-positives = %f, want 0", got)
	}
	// Non-positive values are skipped, not zeroed.
	if got := GeoMean([]float64{4, 0}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean(4, skip 0) = %f, want 4", got)
	}
}

func TestArithMean(t *testing.T) {
	if got := ArithMean(nil); got != 0 {
		t.Errorf("ArithMean(nil) = %f", got)
	}
	if got := ArithMean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("ArithMean = %f, want 2", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.0825, 1); got != "8.2%" && got != "8.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(1, 0); got != "100%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "col", "value")
	tb.AddRow("a", "1")
	tb.AddRowf("b", 3.14159, 7)
	tb.AddNote("n=%d", 2)
	s := tb.String()
	for _, want := range []string{"Demo", "col", "a", "3.142", "note: n=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	if tb.NumRows() != 2 || tb.NumCols() != 2 {
		t.Errorf("dims = %dx%d", tb.NumRows(), tb.NumCols())
	}
	if got := tb.Cell(0, 1); got != "1" {
		t.Errorf("Cell(0,1) = %q", got)
	}
	if got := tb.Cell(9, 9); got != "" {
		t.Errorf("out-of-range Cell = %q", got)
	}
	hs := tb.Headers()
	hs[0] = "mutated"
	if tb.Headers()[0] != "col" {
		t.Error("Headers returned aliased slice")
	}
	rs := tb.Rows()
	rs[0][0] = "mutated"
	if tb.Cell(0, 0) != "a" {
		t.Error("Rows returned aliased slice")
	}
}
