// Package stats provides the counters, histograms and text tables used by
// the simulator and the experiment harness.
//
// Everything in this package is deterministic and allocation-light: the
// simulator calls into histograms on every directory operation, so the hot
// paths are simple array updates.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Histogram is a fixed-range integer histogram with one bucket per value in
// [0, max]. Samples above max are clamped into the last bucket, which is how
// the paper accounts for insertion procedures that hit the attempt cap
// ("in such cases, we count 32 attempts toward the average").
type Histogram struct {
	buckets []uint64
	total   uint64
	sum     uint64
}

// NewHistogram returns a histogram covering values 0..max inclusive.
func NewHistogram(max int) *Histogram {
	if max < 0 {
		panic("stats: histogram max must be non-negative")
	}
	return &Histogram{buckets: make([]uint64, max+1)}
}

// Add records one sample. Values above the configured maximum are clamped.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	h.buckets[v]++
	h.total++
	h.sum += uint64(v)
}

// AddN records n samples of value v.
func (h *Histogram) AddN(v int, n uint64) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	h.buckets[v] += n
	h.total += n
	h.sum += uint64(v) * n
}

// Count returns the total number of samples recorded.
func (h *Histogram) Count() uint64 { return h.total }

// Bucket returns the number of samples equal to v (clamped samples land in
// the last bucket).
func (h *Histogram) Bucket(v int) uint64 {
	if v < 0 || v >= len(h.buckets) {
		return 0
	}
	return h.buckets[v]
}

// Max returns the largest representable value (the clamp bound).
func (h *Histogram) Max() int { return len(h.buckets) - 1 }

// Mean returns the arithmetic mean of the samples, or 0 for an empty
// histogram.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Fraction returns the fraction of samples equal to v.
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Bucket(v)) / float64(h.total)
}

// FractionAtLeast returns the fraction of samples >= v.
func (h *Histogram) FractionAtLeast(v int) float64 {
	if h.total == 0 {
		return 0
	}
	if v < 0 {
		v = 0
	}
	var n uint64
	for i := v; i < len(h.buckets); i++ {
		n += h.buckets[i]
	}
	return float64(n) / float64(h.total)
}

// Percentile returns the smallest value v such that at least p (0..1) of the
// samples are <= v.
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, b := range h.buckets {
		cum += b
		if cum >= target {
			return i
		}
	}
	return len(h.buckets) - 1
}

// Reset clears all recorded samples.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.total, h.sum = 0, 0
}

// Merge adds all samples of other into h. When other covers a larger
// range, h grows to match it (aggregating slices with different attempt
// caps — ideal=1, cuckoo=32 — is routine); samples other clamped into its
// last bucket stay at that value.
func (h *Histogram) Merge(other *Histogram) {
	if len(other.buckets) > len(h.buckets) {
		grown := make([]uint64, len(other.buckets))
		copy(grown, h.buckets)
		h.buckets = grown
	}
	for i, b := range other.buckets {
		h.buckets[i] += b
	}
	h.total += other.total
	h.sum += other.sum
}

// NumLog2Buckets is the bucket count of the power-of-two bucketing
// Log2Bucket implements: bucket 0 holds the value 0 and bucket b > 0
// holds the values in [2^(b-1), 2^b - 1], so 65 buckets cover every
// uint64. It is the bucketing the engine's per-class latency recorders
// use: nanosecond latencies collapse into 65 counters per class with
// one bit-length instruction per sample, and a Histogram over the
// bucket INDICES (AddN per bucket, Merge across recorders, Percentile)
// yields tail percentiles with power-of-two resolution — exactly what a
// p99/p999 under overload needs, at zero hot-path allocation.
const NumLog2Buckets = 65

// Log2Bucket returns the power-of-two bucket index of v: 0 for 0,
// otherwise the bit length of v (bucket b covers [2^(b-1), 2^b - 1]).
//
//cuckoo:hotpath
func Log2Bucket(v uint64) int { return bits.Len64(v) }

// Log2BucketCeil returns the largest value bucket b holds — the
// inclusive upper bound Percentile results on bucketed histograms
// convert back through (a conservative, never-under-reporting bound).
func Log2BucketCeil(b int) uint64 {
	switch {
	case b <= 0:
		return 0
	case b >= 64:
		return math.MaxUint64
	default:
		return 1<<uint(b) - 1
	}
}

// Mean accumulates a running arithmetic mean without storing samples.
type Mean struct {
	sum float64
	n   uint64
}

// Add records one sample.
func (m *Mean) Add(v float64) { m.sum += v; m.n++ }

// AddN records a pre-aggregated sum of n samples.
func (m *Mean) AddN(sum float64, n uint64) { m.sum += sum; m.n += n }

// Value returns the mean, or 0 when no samples have been recorded.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Count returns the number of samples recorded.
func (m *Mean) Count() uint64 { return m.n }

// Ratio tracks hit/total style ratios.
type Ratio struct {
	Hits  uint64
	Total uint64
}

// Observe records one event that either hit or missed.
func (r *Ratio) Observe(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// Value returns hits/total, or 0 when empty.
func (r *Ratio) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// CounterSet is a named collection of monotonically increasing counters,
// used for the directory event-mix accounting (paper §5.6 footnote).
type CounterSet struct {
	names  []string
	values map[string]uint64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{values: make(map[string]uint64)}
}

// Inc increments the named counter by 1, creating it if needed.
func (c *CounterSet) Inc(name string) { c.AddTo(name, 1) }

// AddTo increments the named counter by n, creating it if needed.
func (c *CounterSet) AddTo(name string, n uint64) {
	if _, ok := c.values[name]; !ok {
		c.names = append(c.names, name)
	}
	c.values[name] += n
}

// Get returns the value of the named counter (0 if absent).
func (c *CounterSet) Get(name string) uint64 { return c.values[name] }

// Names returns counter names in insertion order.
func (c *CounterSet) Names() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// Total returns the sum of all counters.
func (c *CounterSet) Total() uint64 {
	var t uint64
	for _, v := range c.values {
		t += v
	}
	return t
}

// Fractions returns each counter as a fraction of the total, sorted by
// insertion order. Returns nil for an empty set.
func (c *CounterSet) Fractions() map[string]float64 {
	t := c.Total()
	if t == 0 {
		return nil
	}
	out := make(map[string]float64, len(c.values))
	for k, v := range c.values {
		out[k] = float64(v) / float64(t)
	}
	return out
}

// Merge adds the counters of other into c.
func (c *CounterSet) Merge(other *CounterSet) {
	for _, name := range other.names {
		c.AddTo(name, other.values[name])
	}
}

// SortedNames returns counter names in lexical order (for deterministic
// printing independent of insertion order).
func (c *CounterSet) SortedNames() []string {
	out := c.Names()
	sort.Strings(out)
	return out
}

// GeoMean returns the geometric mean of vs, ignoring non-positive values.
// The evaluation uses it to aggregate ratios across the workload suite.
func GeoMean(vs []float64) float64 {
	var logSum float64
	var n int
	for _, v := range vs {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// ArithMean returns the arithmetic mean of vs (0 for an empty slice).
func ArithMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// Pct formats a fraction as a percentage string with the given number of
// decimal places.
func Pct(v float64, places int) string {
	return fmt.Sprintf("%.*f%%", places, v*100)
}
