package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table used by the experiment harness to
// print the rows/series that correspond to the paper's tables and figures.
type Table struct {
	Title   string
	Notes   []string
	headers []string
	rows    [][]string
	// charts holds pre-rendered visualizations (ASCII line charts)
	// printed after the body and notes.
	charts []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row. Cells beyond the header count are kept; short rows
// are padded when rendering.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row formatting each value with %v, using the fmt
// verb-free default representation, except float64 values which are printed
// with 4 significant digits.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote attaches a free-text footnote rendered below the table body.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// AddChart attaches a pre-rendered chart printed after the notes.
func (t *Table) AddChart(rendered string) {
	t.charts = append(t.charts, rendered)
}

// NumRows returns the number of body rows.
func (t *Table) NumRows() int { return len(t.rows) }

// NumCols returns the number of header columns.
func (t *Table) NumCols() int { return len(t.headers) }

// Headers returns a copy of the header row.
func (t *Table) Headers() []string {
	out := make([]string, len(t.headers))
	copy(out, t.headers)
	return out
}

// Rows returns a deep copy of the body rows.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		rr := make([]string, len(r))
		copy(rr, r)
		out[i] = rr
	}
	return out
}

// Cell returns the cell at (row, col) or "" when out of range.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.rows) {
		return ""
	}
	r := t.rows[row]
	if col < 0 || col >= len(r) {
		return ""
	}
	return r[col]
}

func (t *Table) widths() []int {
	n := len(t.headers)
	for _, r := range t.rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	for i, h := range t.headers {
		if len(h) > w[i] {
			w[i] = len(h)
		}
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// WriteTo renders the table in aligned plain text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := t.widths()
	writeRow := func(cells []string) {
		for i := 0; i < len(widths); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		// Trim trailing padding for cleanliness.
		s := b.String()
		trimmed := strings.TrimRight(s, " ")
		b.Reset()
		b.WriteString(trimmed)
		b.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		var total int
		for _, wd := range widths {
			total += wd
		}
		total += 2 * (len(widths) - 1)
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	for _, ch := range t.charts {
		b.WriteByte('\n')
		b.WriteString(ch)
	}
	nn, err := io.WriteString(w, b.String())
	return int64(nn), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		// strings.Builder never returns an error; keep the compiler honest.
		panic(err)
	}
	return b.String()
}
