// Package workload provides synthetic stand-ins for the paper's Table 2
// workload suite: two OLTP systems (TPC-C on DB2 and Oracle), three TPC-H
// decision-support queries, two SPECweb99 web servers (Apache and Zeus)
// and two scientific kernels (em3d and ocean).
//
// The real workloads are not reproducible here (commercial databases,
// Solaris 8, FLEXUS checkpoints), so each is replaced by a generator that
// reproduces the block-level properties every directory metric in the
// paper actually depends on — see DESIGN.md §7:
//
//   - a shared read-only code footprint (instruction fetches hit the same
//     blocks in every core's I-cache, the main source of directory entry
//     sharing in the Shared-L2 configuration);
//   - a shared read-write data footprint with Zipf-skewed popularity
//     (buffer pools, session tables) whose writes generate invalidations;
//   - a per-core private footprint, either reuse-oriented (OLTP working
//     sets) or streaming (DSS scans, ocean's grid sweeps: "dominated by
//     large private footprints, resulting in predominantly unique blocks
//     across all private caches", §5.2);
//   - for em3d, remote reads into neighbouring cores' regions (Table 2:
//     "degree 2, span 5, 15% remote").
//
// The profile parameters were calibrated so the measured directory
// occupancy reproduces Figure 8's shape; EXPERIMENTS.md records the
// measured values.
package workload

import (
	"fmt"

	"cuckoodir/internal/rng"
)

// Block address regions. The generators emit 64-byte-block addresses; the
// region bases keep code, shared and per-core private footprints disjoint
// while leaving the low bits (set index and home-slice interleaving bits)
// dense.
const (
	CodeBase    = uint64(1) << 34
	SharedBase  = uint64(2) << 34
	PrivateBase = uint64(4) << 34
	// PrivateStride separates per-core private regions.
	PrivateStride = uint64(1) << 28
)

// Paging constants: the paper's system uses 8 KB pages (Table 1), i.e.
// 128 64-byte blocks per page.
const (
	// PageBlocks is the number of blocks per page.
	PageBlocks = 128
	pageShift  = 7 // log2(PageBlocks)
	// frameBits is the physical page-frame number width; physical block
	// addresses are frameBits+pageShift = 40 bits (a 46-bit byte address
	// space, within Table 1's 48-bit addressing).
	frameBits = 33
)

// Access is one memory reference at block granularity.
type Access struct {
	// Addr is the block address.
	Addr uint64
	// Write is true for stores. Never true for instruction fetches.
	Write bool
	// Code is true for instruction fetches (routed to the I-cache in the
	// Shared-L2 configuration).
	Code bool
}

// Profile describes one synthetic workload.
type Profile struct {
	// Name is the paper's workload name ("db2", "oracle", ...).
	Name string
	// Class is the suite grouping used in the paper's figures
	// ("OLTP", "DSS", "Web", "Sci").
	Class string
	// Table2 is the application description from Table 2.
	Table2 string

	// CodeBlocks is the shared read-only instruction footprint (blocks).
	CodeBlocks int
	// SharedBlocks is the shared read-write data footprint (blocks).
	SharedBlocks int
	// PrivateBlocks is the per-core private data footprint (blocks).
	PrivateBlocks int

	// CodeFrac is the fraction of accesses that are instruction fetches;
	// SharedFrac the fraction that reference shared data. The remainder
	// references private data.
	CodeFrac   float64
	SharedFrac float64
	// WriteFrac is the store fraction among data accesses.
	WriteFrac float64

	// ZipfCode/ZipfShared/ZipfPrivate set the popularity skew of each
	// region (exponent of the Zipf law; higher = more skewed).
	ZipfCode    float64
	ZipfShared  float64
	ZipfPrivate float64

	// PrivateStreaming selects sequential-scan behaviour for the private
	// region (DSS table scans, ocean grid sweeps) instead of Zipf reuse.
	PrivateStreaming bool
	// RemoteFrac is the fraction of private-region accesses that read a
	// neighbouring core's private region (em3d's remote graph edges).
	RemoteFrac float64
	// DisablePaging emits raw logical addresses instead of translating
	// them through the synthetic page table. Directory hash behaviour is
	// only realistic WITH paging (the paper's workloads run on physical
	// addresses scattered by the OS's 8 KB page allocation); disabling is
	// for tests that assert logical address ranges.
	DisablePaging bool
}

// String returns the workload name.
func (p Profile) String() string { return p.Name }

// Profiles returns the nine workloads in the paper's presentation order
// (Table 2 / Figure 8: OLTP, DSS, Web, Sci).
func Profiles() []Profile {
	return []Profile{
		{
			Name: "db2", Class: "OLTP",
			Table2:     "IBM DB2 v8 ESE, 100 warehouses (10 GB), 64 clients, 2 GB buffer pool",
			CodeBlocks: 3072, SharedBlocks: 8192, PrivateBlocks: 24576,
			CodeFrac: 0.30, SharedFrac: 0.26, WriteFrac: 0.20,
			ZipfCode: 0.9, ZipfShared: 0.85, ZipfPrivate: 0.75,
		},
		{
			Name: "oracle", Class: "OLTP",
			Table2:     "Oracle 10g Server, 100 warehouses (10 GB), 16 clients, 1.4 GB SGA",
			CodeBlocks: 4096, SharedBlocks: 10240, PrivateBlocks: 20480,
			CodeFrac: 0.28, SharedFrac: 0.30, WriteFrac: 0.25,
			ZipfCode: 0.9, ZipfShared: 0.85, ZipfPrivate: 0.75,
		},
		{
			Name: "qry2", Class: "DSS",
			Table2:     "TPC-H Q2 on IBM DB2 v8 ESE, 480 MB buffer pool, 1 GB database",
			CodeBlocks: 1536, SharedBlocks: 4096, PrivateBlocks: 65536,
			CodeFrac: 0.22, SharedFrac: 0.10, WriteFrac: 0.06,
			ZipfCode: 0.9, ZipfShared: 0.7, ZipfPrivate: 0.5,
			PrivateStreaming: true,
		},
		{
			Name: "qry16", Class: "DSS",
			Table2:     "TPC-H Q16 on IBM DB2 v8 ESE, 480 MB buffer pool, 1 GB database",
			CodeBlocks: 1536, SharedBlocks: 5120, PrivateBlocks: 49152,
			CodeFrac: 0.24, SharedFrac: 0.13, WriteFrac: 0.07,
			ZipfCode: 0.9, ZipfShared: 0.7, ZipfPrivate: 0.5,
			PrivateStreaming: true,
		},
		{
			Name: "qry17", Class: "DSS",
			Table2:     "TPC-H Q17 on IBM DB2 v8 ESE, 480 MB buffer pool, 1 GB database",
			CodeBlocks: 1536, SharedBlocks: 4608, PrivateBlocks: 57344,
			CodeFrac: 0.22, SharedFrac: 0.11, WriteFrac: 0.06,
			ZipfCode: 0.9, ZipfShared: 0.7, ZipfPrivate: 0.5,
			PrivateStreaming: true,
		},
		{
			Name: "apache", Class: "Web",
			Table2:     "Apache HTTP Server v2.0, SPECweb99, 16K connections, fastCGI, worker threading",
			CodeBlocks: 5120, SharedBlocks: 8192, PrivateBlocks: 16384,
			CodeFrac: 0.35, SharedFrac: 0.25, WriteFrac: 0.15,
			ZipfCode: 0.95, ZipfShared: 0.9, ZipfPrivate: 0.8,
		},
		{
			Name: "zeus", Class: "Web",
			Table2:     "Zeus Web Server v4.3, SPECweb99, 16K connections, fastCGI",
			CodeBlocks: 4608, SharedBlocks: 7168, PrivateBlocks: 15360,
			CodeFrac: 0.34, SharedFrac: 0.24, WriteFrac: 0.15,
			ZipfCode: 0.95, ZipfShared: 0.9, ZipfPrivate: 0.8,
		},
		{
			Name: "em3d", Class: "Sci",
			Table2:     "em3d, 768K nodes, degree 2, span 5, 15% remote",
			CodeBlocks: 640, SharedBlocks: 6144, PrivateBlocks: 49152,
			CodeFrac: 0.15, SharedFrac: 0.10, WriteFrac: 0.12,
			ZipfCode: 0.8, ZipfShared: 0.5, ZipfPrivate: 0.4,
			PrivateStreaming: true, RemoteFrac: 0.15,
		},
		{
			Name: "ocean", Class: "Sci",
			Table2:     "ocean, 1026x1026 grid, 9600s relaxations, 20K res., err 1e-7",
			CodeBlocks: 512, SharedBlocks: 1024, PrivateBlocks: 98304,
			CodeFrac: 0.10, SharedFrac: 0.03, WriteFrac: 0.20,
			ZipfCode: 0.8, ZipfShared: 0.5, ZipfPrivate: 0.3,
			PrivateStreaming: true,
		},
	}
}

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Names returns the workload names in suite order.
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// Generator produces one core's access stream for a profile. Generators
// for the same profile and different cores share the global footprints
// but have independent random streams; everything is deterministic in
// (profile, core, seed).
type Generator struct {
	p        Profile
	core     int
	numCores int
	r        *rng.Source
	codeZ    *rng.Zipf
	sharedZ  *rng.Zipf
	privZ    *rng.Zipf
	stream   uint64 // streaming scan pointer
	pageSeed uint64 // global (core-independent) page-table seed
}

// NewGenerator builds the access generator for one core.
func NewGenerator(p Profile, coreID, numCores int, seed uint64) *Generator {
	if coreID < 0 || coreID >= numCores {
		panic(fmt.Sprintf("workload: core %d out of range [0,%d)", coreID, numCores))
	}
	if p.CodeBlocks <= 0 || p.SharedBlocks <= 0 || p.PrivateBlocks <= 0 {
		panic("workload: profile footprints must be positive")
	}
	r := rng.New(seed ^ (uint64(coreID)+1)*0x9e3779b97f4a7c15)
	g := &Generator{
		p:        p,
		core:     coreID,
		numCores: numCores,
		r:        r,
		codeZ:    rng.NewZipf(r, p.CodeBlocks, p.ZipfCode),
		sharedZ:  rng.NewZipf(r, p.SharedBlocks, p.ZipfShared),
		pageSeed: seed, // shared across cores: one page table per system
	}
	if !p.PrivateStreaming {
		g.privZ = rng.NewZipf(r, p.PrivateBlocks, p.ZipfPrivate)
	}
	// Stagger scan start points so cores do not sweep in lockstep.
	g.stream = uint64(coreID) * uint64(p.PrivateBlocks) / uint64(numCores)
	return g
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

// privateAddr returns the block address of index idx in core c's private
// region.
func privateAddr(c int, idx uint64) uint64 {
	return PrivateBase + uint64(c)*PrivateStride + idx
}

// translate maps a logical block address to a physical one through the
// synthetic page table: the page offset is preserved (spatial locality
// within 8 KB pages survives, as on real hardware) while the page frame
// number is a pseudo-random pure function of (logical page, system seed),
// modelling the OS's physical page allocation. Without this scatter, the
// perfectly regular synthetic regions defeat the linear Seznec-Bodin
// skewing functions in ways the paper's physically-addressed workloads
// never would.
func (g *Generator) translate(logical uint64) uint64 {
	if g.p.DisablePaging {
		return logical
	}
	page := logical >> pageShift
	off := logical & (PageBlocks - 1)
	z := page*0x9e3779b97f4a7c15 ^ g.pageSeed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	frame := z & (1<<frameBits - 1)
	return frame<<pageShift | off
}

// Next returns the next access of this core's stream.
func (g *Generator) Next() Access {
	u := g.r.Float64()
	switch {
	case u < g.p.CodeFrac:
		return Access{
			Addr: g.translate(CodeBase + uint64(g.codeZ.Next())),
			Code: true,
		}
	case u < g.p.CodeFrac+g.p.SharedFrac:
		return Access{
			Addr:  g.translate(SharedBase + uint64(g.sharedZ.Next())),
			Write: g.r.Bool(g.p.WriteFrac),
		}
	default:
		// Private region; occasionally a remote neighbour read (em3d).
		if g.p.RemoteFrac > 0 && g.r.Bool(g.p.RemoteFrac) {
			neighbour := (g.core + 1 + g.r.Intn(g.numCores-1)) % g.numCores
			var idx uint64
			if g.p.PrivateStreaming {
				idx = g.r.Uint64() % uint64(g.p.PrivateBlocks)
			} else {
				idx = uint64(g.privZ.Next())
			}
			return Access{Addr: g.translate(privateAddr(neighbour, idx))}
		}
		var idx uint64
		if g.p.PrivateStreaming {
			idx = g.stream % uint64(g.p.PrivateBlocks)
			g.stream++
		} else {
			idx = uint64(g.privZ.Next())
		}
		return Access{
			Addr:  g.translate(privateAddr(g.core, idx)),
			Write: g.r.Bool(g.p.WriteFrac),
		}
	}
}
