package workload

import (
	"testing"
)

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 9 {
		t.Fatalf("profiles = %d, want 9 (Table 2)", len(ps))
	}
	wantOrder := []string{"db2", "oracle", "qry2", "qry16", "qry17", "apache", "zeus", "em3d", "ocean"}
	for i, p := range ps {
		if p.Name != wantOrder[i] {
			t.Errorf("profile %d = %q, want %q", i, p.Name, wantOrder[i])
		}
		if p.Class == "" || p.Table2 == "" {
			t.Errorf("%s: missing class/description", p.Name)
		}
		if p.CodeFrac+p.SharedFrac >= 1 {
			t.Errorf("%s: access fractions exceed 1", p.Name)
		}
		if p.CodeBlocks <= 0 || p.SharedBlocks <= 0 || p.PrivateBlocks <= 0 {
			t.Errorf("%s: non-positive footprint", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("ocean")
	if err != nil || p.Name != "ocean" {
		t.Fatalf("ByName(ocean) = %v, %v", p, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName of unknown workload succeeded")
	}
	if len(Names()) != 9 {
		t.Fatal("Names() incomplete")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ByName("db2")
	a := NewGenerator(p, 3, 16, 42)
	b := NewGenerator(p, 3, 16, 42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverged at access %d", i)
		}
	}
	c := NewGenerator(p, 4, 16, 42) // different core -> different stream
	a = NewGenerator(p, 3, 16, 42)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 100 {
		t.Errorf("different cores produced %d/1000 identical accesses", same)
	}
}

func TestRegionsDisjoint(t *testing.T) {
	p, _ := ByName("oracle")
	p.DisablePaging = true
	g := NewGenerator(p, 0, 16, 7)
	for i := 0; i < 20000; i++ {
		a := g.Next()
		switch {
		case a.Code:
			if a.Addr < CodeBase || a.Addr >= CodeBase+uint64(p.CodeBlocks) {
				t.Fatalf("code access outside region: %#x", a.Addr)
			}
			if a.Write {
				t.Fatal("write to code region")
			}
		case a.Addr >= SharedBase && a.Addr < SharedBase+uint64(p.SharedBlocks):
			// shared data — fine
		case a.Addr >= PrivateBase:
			// private data — fine
		default:
			t.Fatalf("access to unknown region: %#x", a.Addr)
		}
	}
}

func TestAccessMixFractions(t *testing.T) {
	p, _ := ByName("apache")
	p.DisablePaging = true
	g := NewGenerator(p, 2, 16, 9)
	const n = 100000
	var code, shared, private, writes, data int
	for i := 0; i < n; i++ {
		a := g.Next()
		switch {
		case a.Code:
			code++
		case a.Addr >= SharedBase && a.Addr < PrivateBase:
			shared++
		default:
			private++
		}
		if !a.Code {
			data++
			if a.Write {
				writes++
			}
		}
	}
	approx := func(got int, want float64, name string) {
		frac := float64(got) / n
		if frac < want-0.02 || frac > want+0.02 {
			t.Errorf("%s fraction = %.3f, want ~%.3f", name, frac, want)
		}
	}
	approx(code, p.CodeFrac, "code")
	approx(shared, p.SharedFrac, "shared")
	approx(private, 1-p.CodeFrac-p.SharedFrac, "private")
	// Writes: WriteFrac of data accesses (remote reads dilute slightly for
	// em3d only; apache has no remote traffic).
	wfrac := float64(writes) / float64(data)
	if wfrac < p.WriteFrac-0.03 || wfrac > p.WriteFrac+0.03 {
		t.Errorf("write fraction = %.3f, want ~%.3f", wfrac, p.WriteFrac)
	}
}

func TestPrivateIsolation(t *testing.T) {
	// Without remote traffic, core i's private accesses never touch core
	// j's region.
	p, _ := ByName("qry2")
	p.DisablePaging = true
	for _, coreID := range []int{0, 5, 15} {
		g := NewGenerator(p, coreID, 16, 3)
		lo := PrivateBase + uint64(coreID)*PrivateStride
		hi := lo + PrivateStride
		for i := 0; i < 10000; i++ {
			a := g.Next()
			if a.Addr >= PrivateBase && (a.Addr < lo || a.Addr >= hi) {
				t.Fatalf("core %d touched foreign private block %#x", coreID, a.Addr)
			}
		}
	}
}

func TestEm3dRemoteReads(t *testing.T) {
	p, _ := ByName("em3d")
	p.DisablePaging = true
	g := NewGenerator(p, 0, 16, 11)
	ownLo := PrivateBase
	ownHi := PrivateBase + PrivateStride
	var own, remote int
	for i := 0; i < 100000; i++ {
		a := g.Next()
		if a.Addr < PrivateBase {
			continue
		}
		if a.Addr >= ownLo && a.Addr < ownHi {
			own++
		} else {
			remote++
			if a.Write {
				t.Fatal("remote access must be a read")
			}
		}
	}
	frac := float64(remote) / float64(own+remote)
	if frac < 0.10 || frac > 0.20 {
		t.Errorf("remote fraction = %.3f, want ~0.15 (Table 2)", frac)
	}
}

func TestStreamingSweepsFootprint(t *testing.T) {
	// Streaming workloads must touch (nearly) their whole private
	// footprint, not just a hot subset — that is what fills the Private-L2
	// directory to ~100% for ocean.
	p, _ := ByName("ocean")
	p.DisablePaging = true
	g := NewGenerator(p, 1, 16, 13)
	seen := make(map[uint64]bool)
	// Enough accesses that private (~87% of stream) covers the footprint.
	for i := 0; i < p.PrivateBlocks*2; i++ {
		a := g.Next()
		if a.Addr >= PrivateBase {
			seen[a.Addr] = true
		}
	}
	if got := len(seen); float64(got) < 0.9*float64(p.PrivateBlocks) {
		t.Errorf("streaming touched %d of %d private blocks", got, p.PrivateBlocks)
	}
}

func TestZipfReuseConcentrates(t *testing.T) {
	// Non-streaming (OLTP) private access concentrates on a hot subset.
	p, _ := ByName("db2")
	p.DisablePaging = true
	g := NewGenerator(p, 1, 16, 13)
	counts := make(map[uint64]int)
	var priv int
	for i := 0; i < 200000; i++ {
		a := g.Next()
		if a.Addr >= PrivateBase {
			counts[a.Addr]++
			priv++
		}
	}
	if len(counts) == 0 {
		t.Fatal("no private accesses")
	}
	// The most popular block should be far above uniform.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniform := float64(priv) / float64(p.PrivateBlocks)
	if float64(max) < 5*uniform {
		t.Errorf("hottest block %d accesses vs uniform %.1f — no reuse skew", max, uniform)
	}
}

func TestPaging(t *testing.T) {
	p, _ := ByName("oracle")
	// Translation must be deterministic and identical across cores (one
	// system-wide page table), preserve page offsets, and scatter frames.
	a := NewGenerator(p, 0, 16, 42)
	b := NewGenerator(p, 5, 16, 42)
	logical := CodeBase + 300 // page 2 of the code region, offset 44
	pa := a.translate(logical)
	pb := b.translate(logical)
	if pa != pb {
		t.Fatalf("page table differs across cores: %#x vs %#x", pa, pb)
	}
	if pa&(PageBlocks-1) != logical&(PageBlocks-1) {
		t.Fatalf("page offset not preserved: %#x -> %#x", logical, pa)
	}
	// Different pages map to different frames (with overwhelming
	// probability); same page maps consistently.
	if a.translate(logical) != pa {
		t.Fatal("translation not deterministic")
	}
	other := a.translate(logical + PageBlocks)
	if other>>7 == pa>>7 {
		t.Fatal("adjacent logical pages mapped to the same frame")
	}
	// A different seed yields a different page table.
	c := NewGenerator(p, 0, 16, 43)
	if c.translate(logical) == pa {
		t.Fatal("page table ignores the seed")
	}
	// Frames stay within the physical space.
	for i := uint64(0); i < 1000; i++ {
		paddr := a.translate(PrivateBase + i*PageBlocks)
		if paddr >= 1<<40 {
			t.Fatalf("physical block address %#x exceeds 40 bits", paddr)
		}
	}
}

func TestPagingScattersSlices(t *testing.T) {
	// The home-slice distribution of a streaming private footprint must
	// stay near-uniform after translation (offset bits carry the
	// interleaving, so this is near-automatic; guard it anyway).
	p, _ := ByName("ocean")
	g := NewGenerator(p, 0, 16, 9)
	counts := make([]int, 16)
	for i := 0; i < 100000; i++ {
		counts[g.Next().Addr&15]++
	}
	for s, c := range counts {
		if c < 100000/16/2 {
			t.Errorf("slice %d starved: %d accesses", s, c)
		}
	}
}

func TestGeneratorPanics(t *testing.T) {
	p, _ := ByName("db2")
	for _, fn := range []func(){
		func() { NewGenerator(p, -1, 16, 1) },
		func() { NewGenerator(p, 16, 16, 1) },
		func() { NewGenerator(Profile{Name: "bad"}, 0, 16, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	p, _ := ByName("oracle")
	g := NewGenerator(p, 0, 16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}
